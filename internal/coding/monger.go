package coding

import (
	"bytes"
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/run"
)

// MongerConfig parameterizes a rumor mongering run: broadcasting a B-block
// message from one source to all n nodes, using the dating service to
// arrange who sends to whom in each round and network coding to make every
// transmission useful.
type MongerConfig struct {
	N         int
	Blocks    int
	BlockSize int
	Source    int
	// Profile defaults to homogeneous unit bandwidth; Selector to uniform.
	Profile   bandwidth.Profile
	Selector  core.Selector
	MaxRounds int
	// Seed for the message content (the "movie" being distributed).
	PayloadSeed uint64
}

// MongerResult reports a mongering run.
type MongerResult struct {
	Rounds         int
	Completed      bool
	DecodedHistory []int // fully decoded node count per round
	SentHistory    []int // coded packets transmitted per round
	PacketsSent    int   // coded packets transmitted
	Innovative     int   // packets that increased some node's rank
}

// Protocol implements run.Spec.
func (c MongerConfig) Protocol() string { return "monger" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainMonger and every dating round draws its workers from the
// shared budget. Trajectory is the fully-decoded node history; Detail the
// full MongerResult.
func (c MongerConfig) Execute(o *run.Options) (run.Report, error) {
	res, err := runMongerBudgeted(c, run.StreamFor(o.Seed, run.DomainMonger), o.Budget)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.DecodedHistory,
		Sent:       res.SentHistory,
		Messages:   int64(res.PacketsSent),
		Detail:     res,
	}, nil
}

// RunMonger executes the protocol and verifies every node's decoded message
// against the source content before declaring completion.
func RunMonger(cfg MongerConfig, s *rng.Stream) (MongerResult, error) {
	return runMongerBudgeted(cfg, s, nil)
}

// runMongerBudgeted is RunMonger with an optional shared worker budget.
// Every dating round runs on the seeded engine with one seed drawn off the
// run stream; a non-nil b lets each round soak up the pool's spare tokens,
// and the worker count is a pure speed knob either way.
func runMongerBudgeted(cfg MongerConfig, s *rng.Stream, b *par.Budget) (MongerResult, error) {
	if cfg.N <= 1 {
		return MongerResult{}, fmt.Errorf("coding: mongering needs n > 1, got %d", cfg.N)
	}
	if cfg.Source < 0 || cfg.Source >= cfg.N {
		return MongerResult{}, fmt.Errorf("coding: source %d out of range", cfg.Source)
	}
	if cfg.Blocks <= 0 || cfg.BlockSize <= 0 {
		return MongerResult{}, fmt.Errorf("coding: need positive Blocks and BlockSize")
	}

	profile := cfg.Profile
	if profile.N() == 0 {
		profile = bandwidth.Homogeneous(cfg.N, 1)
	}
	if profile.N() != cfg.N {
		return MongerResult{}, fmt.Errorf("coding: profile nodes %d != n %d", profile.N(), cfg.N)
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(cfg.N)
		if err != nil {
			return MongerResult{}, err
		}
		sel = u
	}
	svc, err := core.NewService(profile, sel)
	if err != nil {
		return MongerResult{}, err
	}

	// Generate the message.
	payloadRng := rng.New(cfg.PayloadSeed)
	blocks := make([][]byte, cfg.Blocks)
	for i := range blocks {
		blocks[i] = make([]byte, cfg.BlockSize)
		for j := range blocks[i] {
			blocks[i][j] = byte(payloadRng.Intn(256))
		}
	}

	// Per-node decoders; the source starts with full rank.
	nodes := make([]*Decoder, cfg.N)
	for i := range nodes {
		if i == cfg.Source {
			nodes[i], err = Source(blocks)
		} else {
			nodes[i], err = NewDecoder(cfg.Blocks, cfg.BlockSize)
		}
		if err != nil {
			return MongerResult{}, err
		}
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8 * (cfg.Blocks + 64)
	}

	var res MongerResult
	for round := 1; round <= maxRounds; round++ {
		// One draw per round whatever the worker count, so the run stream
		// evolves identically for every budget size.
		seed := s.Uint64()
		var rres core.RoundResult
		if b != nil {
			rres, err = svc.RunRoundShared(seed, b)
		} else {
			rres, err = svc.RunRoundSeeded(seed, 1)
		}
		if err != nil {
			return MongerResult{}, err
		}
		dates := rres.Dates
		// Transmissions use the start-of-round spans: emit all packets
		// first, then deliver, so a packet relayed within the same round
		// cannot leapfrog (synchronous model).
		type delivery struct {
			to  int
			pkt Packet
		}
		var mail []delivery
		for _, d := range dates {
			if pkt, ok := nodes[d.Sender].Emit(s); ok {
				mail = append(mail, delivery{to: d.Receiver, pkt: pkt})
				res.PacketsSent++
			}
		}
		for _, m := range mail {
			innovative, err := nodes[m.to].AddPacket(m.pkt)
			if err != nil {
				return MongerResult{}, err
			}
			if innovative {
				res.Innovative++
			}
		}
		decoded := 0
		for _, nd := range nodes {
			if nd.Decoded() {
				decoded++
			}
		}
		res.Rounds = round
		res.DecodedHistory = append(res.DecodedHistory, decoded)
		res.SentHistory = append(res.SentHistory, len(mail))
		if decoded == cfg.N {
			res.Completed = true
			break
		}
	}

	if res.Completed {
		// End-to-end integrity: every node must hold the exact message.
		for i, nd := range nodes {
			for b := range blocks {
				got, err := nd.Block(b)
				if err != nil {
					return MongerResult{}, fmt.Errorf("coding: node %d block %d: %v", i, b, err)
				}
				if !bytes.Equal(got, blocks[b]) {
					return MongerResult{}, fmt.Errorf("coding: node %d decoded block %d incorrectly", i, b)
				}
			}
		}
	}
	return res, nil
}
