package coding

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func randomBlocks(s *rng.Stream, b, size int) [][]byte {
	blocks := make([][]byte, b)
	for i := range blocks {
		blocks[i] = make([]byte, size)
		for j := range blocks[i] {
			blocks[i][j] = byte(s.Intn(256))
		}
	}
	return blocks
}

func TestDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0, 8); err == nil {
		t.Error("accepted zero blocks")
	}
	if _, err := NewDecoder(4, 0); err == nil {
		t.Error("accepted zero block size")
	}
	d, _ := NewDecoder(4, 8)
	if _, err := d.AddPacket(Packet{Coeffs: make([]byte, 3), Payload: make([]byte, 8)}); err == nil {
		t.Error("accepted short coefficient vector")
	}
	if _, err := d.AddPacket(Packet{Coeffs: make([]byte, 4), Payload: make([]byte, 5)}); err == nil {
		t.Error("accepted wrong payload size")
	}
	if _, err := d.Block(0); err == nil {
		t.Error("decoded before full rank")
	}
}

func TestSourceHasFullRank(t *testing.T) {
	s := rng.New(1)
	blocks := randomBlocks(s, 5, 16)
	src, err := Source(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Decoded() || src.Rank() != 5 {
		t.Fatalf("source rank %d", src.Rank())
	}
	for i := range blocks {
		got, err := src.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blocks[i]) {
			t.Fatalf("source block %d corrupted", i)
		}
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := Source(nil); err == nil {
		t.Error("accepted empty block list")
	}
	if _, err := Source([][]byte{{}}); err == nil {
		t.Error("accepted empty block")
	}
	if _, err := Source([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("accepted ragged blocks")
	}
}

func TestDirectTransferDecodes(t *testing.T) {
	// Receiving B random coded packets from the source decodes the message
	// with overwhelming probability over GF(256).
	s := rng.New(2)
	blocks := randomBlocks(s, 8, 32)
	src, _ := Source(blocks)
	dst, _ := NewDecoder(8, 32)
	sent := 0
	for !dst.Decoded() {
		pkt, ok := src.Emit(s)
		if !ok {
			t.Fatal("source cannot emit")
		}
		if _, err := dst.AddPacket(pkt); err != nil {
			t.Fatal(err)
		}
		sent++
		if sent > 20 {
			t.Fatalf("needed %d packets for 8 blocks; dependence rate absurd", sent)
		}
	}
	for i := range blocks {
		got, _ := dst.Block(i)
		if !bytes.Equal(got, blocks[i]) {
			t.Fatalf("block %d decoded incorrectly", i)
		}
	}
}

func TestRelayedRecodingDecodes(t *testing.T) {
	// source -> relay -> sink, with the relay recoding from a partial span:
	// the core property that makes mongering work without coordination.
	s := rng.New(3)
	blocks := randomBlocks(s, 6, 24)
	src, _ := Source(blocks)
	relay, _ := NewDecoder(6, 24)
	sink, _ := NewDecoder(6, 24)
	guard := 0
	for !sink.Decoded() {
		if pkt, ok := src.Emit(s); ok {
			if _, err := relay.AddPacket(pkt); err != nil {
				t.Fatal(err)
			}
		}
		if pkt, ok := relay.Emit(s); ok {
			if _, err := sink.AddPacket(pkt); err != nil {
				t.Fatal(err)
			}
		}
		guard++
		if guard > 100 {
			t.Fatalf("sink stuck at rank %d of 6", sink.Rank())
		}
	}
	for i := range blocks {
		got, _ := sink.Block(i)
		if !bytes.Equal(got, blocks[i]) {
			t.Fatalf("relayed block %d corrupted", i)
		}
	}
}

func TestNonInnovativePacketsRejected(t *testing.T) {
	s := rng.New(4)
	blocks := randomBlocks(s, 4, 8)
	src, _ := Source(blocks)
	dst, _ := NewDecoder(4, 8)
	pkt, _ := src.Emit(s)
	saved := pkt.Clone()
	if innovative, _ := dst.AddPacket(pkt); !innovative {
		t.Fatal("first packet must be innovative")
	}
	if innovative, _ := dst.AddPacket(saved); innovative {
		t.Fatal("identical packet counted as innovative")
	}
	if dst.Rank() != 1 {
		t.Fatalf("rank %d after duplicate", dst.Rank())
	}
}

func TestZeroPacketNotInnovative(t *testing.T) {
	dst, _ := NewDecoder(3, 4)
	innovative, err := dst.AddPacket(Packet{Coeffs: make([]byte, 3), Payload: make([]byte, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if innovative {
		t.Fatal("all-zero packet counted as innovative")
	}
}

func TestEmitFromEmptySpan(t *testing.T) {
	d, _ := NewDecoder(3, 4)
	if _, ok := d.Emit(rng.New(5)); ok {
		t.Fatal("empty decoder emitted a packet")
	}
}

func TestEmitNeverZero(t *testing.T) {
	// Emit guards against the all-zero combination, so every transmission
	// from a non-empty span carries information.
	s := rng.New(6)
	blocks := randomBlocks(s, 2, 4)
	src, _ := Source(blocks)
	for i := 0; i < 2000; i++ {
		pkt, ok := src.Emit(s)
		if !ok {
			t.Fatal("source must emit")
		}
		zero := true
		for _, c := range pkt.Coeffs {
			if c != 0 {
				zero = false
				break
			}
		}
		if zero {
			t.Fatal("emitted the zero combination")
		}
	}
}

func TestRankNeverExceedsBlocks(t *testing.T) {
	s := rng.New(7)
	blocks := randomBlocks(s, 5, 8)
	src, _ := Source(blocks)
	dst, _ := NewDecoder(5, 8)
	for i := 0; i < 50; i++ {
		pkt, _ := src.Emit(s)
		if _, err := dst.AddPacket(pkt); err != nil {
			t.Fatal(err)
		}
		if dst.Rank() > 5 {
			t.Fatalf("rank %d exceeds block count", dst.Rank())
		}
	}
}

func TestRunMongerValidation(t *testing.T) {
	s := rng.New(8)
	if _, err := RunMonger(MongerConfig{N: 1, Blocks: 2, BlockSize: 4}, s); err == nil {
		t.Error("accepted n = 1")
	}
	if _, err := RunMonger(MongerConfig{N: 4, Blocks: 0, BlockSize: 4}, s); err == nil {
		t.Error("accepted zero blocks")
	}
	if _, err := RunMonger(MongerConfig{N: 4, Blocks: 2, BlockSize: 4, Source: 9}, s); err == nil {
		t.Error("accepted bad source")
	}
}

func TestRunMongerCompletes(t *testing.T) {
	s := rng.New(9)
	res, err := RunMonger(MongerConfig{N: 40, Blocks: 8, BlockSize: 16, PayloadSeed: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("mongering incomplete after %d rounds", res.Rounds)
	}
	// Each node receives at most one packet per round (unit bandwidth), so
	// at least Blocks rounds are information-theoretically necessary.
	if res.Rounds < 8 {
		t.Fatalf("completed in %d rounds, impossible for 8 blocks at unit bandwidth", res.Rounds)
	}
	last := res.DecodedHistory[len(res.DecodedHistory)-1]
	if last != 40 {
		t.Fatalf("final decoded count %d", last)
	}
	if res.Innovative > res.PacketsSent {
		t.Fatalf("innovative %d > sent %d", res.Innovative, res.PacketsSent)
	}
}

func TestRunMongerRoundsNearOptimal(t *testing.T) {
	// Network coding should finish in about Blocks + O(log n) rounds; allow
	// a factor ~4 of the information-theoretic bound.
	s := rng.New(10)
	const n, blocks = 60, 12
	res, err := RunMonger(MongerConfig{N: n, Blocks: blocks, BlockSize: 8, PayloadSeed: 2}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	bound := 4 * (blocks + 12) // 12 ~ 2 log2 n
	if res.Rounds > bound {
		t.Fatalf("took %d rounds, loose bound %d", res.Rounds, bound)
	}
}

func TestRunMongerDecodedHistoryMonotone(t *testing.T) {
	s := rng.New(11)
	res, err := RunMonger(MongerConfig{N: 30, Blocks: 4, BlockSize: 8}, s)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, c := range res.DecodedHistory {
		if c < prev {
			t.Fatalf("decoded count dropped at round %d", i+1)
		}
		prev = c
	}
}

func TestRunMongerRespectsMaxRounds(t *testing.T) {
	s := rng.New(12)
	res, err := RunMonger(MongerConfig{N: 100, Blocks: 32, BlockSize: 8, MaxRounds: 3}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds > 3 {
		t.Fatalf("cap violated: %+v", res)
	}
}
