package exch

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestPartitionCovers(t *testing.T) {
	// The owner ranges must tile [0, n): every destination belongs to
	// exactly the owner whose range holds it, for every (n, parts) shape —
	// including parts > n, where some owners get empty ranges.
	for _, tc := range []struct{ n, parts int }{
		{1, 1}, {17, 2}, {100, 3}, {1000, 8}, {1000, 16}, {3, 16}, {10, 4},
	} {
		p := Partition{N: tc.n, Parts: tc.parts}
		if p.Start(0) != 0 || p.End(tc.parts-1) != tc.n {
			t.Fatalf("n=%d parts=%d: ranges do not span [0, n)", tc.n, tc.parts)
		}
		for o := 1; o < tc.parts; o++ {
			if p.Start(o) != p.End(o-1) {
				t.Fatalf("n=%d parts=%d: gap between owners %d and %d", tc.n, tc.parts, o-1, o)
			}
		}
		for d := 0; d < tc.n; d++ {
			o := p.Owner(d)
			if o < 0 || o >= tc.parts {
				t.Fatalf("n=%d parts=%d: owner(%d) = %d out of range", tc.n, tc.parts, d, o)
			}
			if lo, hi := p.Range(o); d < lo || d >= hi {
				t.Fatalf("n=%d parts=%d: owner(%d) = %d but range is [%d, %d)", tc.n, tc.parts, d, o, lo, hi)
			}
		}
	}
}

// record scatters count pseudo-random (key, value) pairs per worker into ex
// (in scan order per worker, as the engines do), and returns the reference
// bucket layout: want[d] holds d's values in (worker, scan) order.
func record(ex *Exchange[int32], workers, n, count int, seed uint64) (want [][]int32) {
	ex.Reset(workers, Partition{N: n, Parts: workers})
	want = make([][]int32, n)
	s := rng.New(seed)
	type rec struct{ k, v int32 }
	perWorker := make([][]rec, workers)
	for w := 0; w < workers; w++ {
		ex.ClearWorker(w)
		for i := 0; i < count; i++ {
			k, v := int32(s.Intn(n)), int32(s.Intn(n))
			ex.Record(w, k, v)
			perWorker[w] = append(perWorker[w], rec{k, v})
		}
	}
	for w := 0; w < workers; w++ {
		for _, r := range perWorker[w] {
			want[r.k] = append(want[r.k], r.v)
		}
	}
	return want
}

// drain runs the Prefix+Fill pass and returns the flat output and offsets.
func drain(ex *Exchange[int32], n, workers int) (off []int32, out []int32) {
	total := ex.Prefix()
	off = make([]int32, n+1)
	out = make([]int32, total)
	ends := make([]int32, workers)
	for o := 0; o < workers; o++ {
		ends[o] = ex.Fill(o, off, out)
	}
	off[n] = total
	for o := 0; o+1 < workers; o++ {
		if ends[o] != ex.Base(o+1) {
			panic("Fill end does not meet the next owner's base")
		}
	}
	return off, out
}

func TestFillDisjointAndStable(t *testing.T) {
	// Fill must produce buckets in destination order, each holding its
	// values in global scan order (stability), with owners writing disjoint
	// ranges that exactly tile the output.
	for _, tc := range []struct{ n, workers, count int }{
		{1, 1, 3}, {17, 2, 10}, {100, 3, 40}, {1000, 8, 200}, {1000, 16, 50}, {5, 9, 4},
	} {
		var ex Exchange[int32]
		want := record(&ex, tc.workers, tc.n, tc.count, 5)
		off, out := drain(&ex, tc.n, tc.workers)
		if int(off[tc.n]) != len(out) || len(out) != tc.workers*tc.count {
			t.Fatalf("n=%d workers=%d: totals do not close the offset table", tc.n, tc.workers)
		}
		for v := 0; v < tc.n; v++ {
			got := out[off[v]:off[v+1]]
			if len(got) != len(want[v]) || (len(got) > 0 && !reflect.DeepEqual(got, want[v])) {
				t.Fatalf("n=%d workers=%d: bucket %d = %v, want %v", tc.n, tc.workers, v, got, want[v])
			}
		}
	}
}

func TestScratchReuse(t *testing.T) {
	// Reusing one Exchange across rounds — including shape changes that
	// force chunk-matrix reallocation and shrink the worker count — must
	// leave no stale state: each round's output equals a fresh Exchange's.
	var reused Exchange[int32]
	shapes := []struct{ n, workers, count int }{
		{100, 4, 30}, {100, 4, 10}, {1000, 8, 50}, {100, 4, 30}, {50, 2, 0}, {100, 4, 30},
	}
	for round, tc := range shapes {
		record(&reused, tc.workers, tc.n, tc.count, uint64(round))
		gotOff, gotOut := drain(&reused, tc.n, tc.workers)
		var fresh Exchange[int32]
		record(&fresh, tc.workers, tc.n, tc.count, uint64(round))
		wantOff, wantOut := drain(&fresh, tc.n, tc.workers)
		if !reflect.DeepEqual(gotOff, wantOff) || !reflect.DeepEqual(gotOut, wantOut) {
			t.Fatalf("round %d (n=%d workers=%d): reused exchange diverged from fresh", round, tc.n, tc.workers)
		}
	}
}

func TestConcatSetBaseFlush(t *testing.T) {
	// The RecordTo/SetBase/Flush concat form must place owner o's values as
	// base..end in worker order, and Flush must empty the chunks so the next
	// round starts clean without ClearWorker.
	var ex Exchange[int32]
	const owners, workers = 3, 4
	ex.Reset(workers, Partition{N: owners, Parts: owners})
	for w := 0; w < workers; w++ {
		ex.ClearWorker(w)
	}
	for pass := 0; pass < 2; pass++ {
		want := make([][]int32, owners)
		for w := 0; w < workers; w++ {
			for o := 0; o < owners; o++ {
				for k := 0; k < (w+o+pass)%3; k++ {
					v := int32(100*pass + 10*w + o)
					ex.RecordTo(w, o, v)
					want[o] = append(want[o], v)
				}
			}
		}
		for o := 0; o < owners; o++ {
			base := 0
			end := ex.SetBase(o, base)
			if end-base != ex.Total(o) {
				t.Fatalf("pass %d owner %d: SetBase end %d != total %d", pass, o, end, ex.Total(o))
			}
			dst := make([]int32, end)
			for w := 0; w < workers; w++ {
				ex.Flush(w, o, dst)
			}
			if !reflect.DeepEqual(dst, want[o]) && len(want[o]) > 0 {
				t.Fatalf("pass %d owner %d: flushed %v, want %v", pass, o, dst, want[o])
			}
			if ex.Total(o) != 0 {
				t.Fatalf("pass %d owner %d: Flush left %d records behind", pass, o, ex.Total(o))
			}
		}
	}
}

func TestSwap(t *testing.T) {
	// Swap must exchange the chunk storage of two Exchanges: records made
	// into the back buffer drain from the front after a swap, byte for byte.
	var front, back Exchange[int32]
	const n, workers, count = 200, 3, 25
	record(&front, workers, n, count, 1)
	wantNext := record(&back, workers, n, count, 2)
	// Drain the front (round r), then swap and drain round r+1.
	drain(&front, n, workers)
	front.Swap(&back)
	off, out := drain(&front, n, workers)
	for v := 0; v < n; v++ {
		got := out[off[v]:off[v+1]]
		if len(got) != len(wantNext[v]) || (len(got) > 0 && !reflect.DeepEqual(got, wantNext[v])) {
			t.Fatalf("bucket %d after swap = %v, want %v", v, got, wantNext[v])
		}
	}
}
