// Package exch is the owner-range exchange kernel shared by every flat
// engine of the repository: the core round engine, the Arranger, the seeded
// Service rounds and the live message runtime's deliver and route phases all
// scatter records into per-(worker, owner) chunks, prefix the owners'
// incoming totals into base offsets with a tiny serial pass, and let each
// owner counting-sort (or concatenate) its own contiguous destination range
// in parallel.
//
// The kernel packages that idiom once:
//
//   - Partition is the destination split: owner o owns the contiguous id
//     range [Start(o), End(o)), and Owner(d) finds d's owner in O(1). The
//     cuts are a pure function of (n, parts) and never affect results —
//     only which worker builds which buckets.
//   - Exchange[T] is the chunked scatter: during a fanout each worker w
//     appends (key, value) records into its private chunk row — one small
//     buffer per (worker, owner) pair, filled in scan order. A serial
//     Prefix (O(workers·owners), no length-n scan) turns per-owner totals
//     into base offsets; then each owner calls Fill to counting-sort its
//     own range into a flat output slice with a count array covering only
//     that range. Because workers scan ascending shards and Fill replays
//     chunks in worker order, every bucket ends up holding its records in
//     global scan order — the layout all the engines' determinism proofs
//     rest on.
//
// Scratch is O(n + records) regardless of the worker count: the owners'
// count arrays partition [0, n) and the chunks together hold exactly the
// round's records. Exchanges are double-bufferable: Swap exchanges the
// chunk storage of two Exchanges in O(1), which is how pipelined round
// execution records round r+1's requests while round r's are still being
// matched.
//
// Concurrency contract: Reset and Prefix are serial; ClearWorker, Record
// and RecordTo may run concurrently for distinct w; Fill and SetBase/Flush
// may run concurrently for distinct owners, strictly after Prefix (or an
// external base assignment) and the barrier that ends the record phase.
package exch

// Partition splits the destination space [0, n) into parts contiguous
// uniform id ranges, one per owner.
type Partition struct {
	N     int // destination space size
	Parts int // number of owners
}

// Start returns the first destination of owner o's range.
func (p Partition) Start(o int) int { return p.N * o / p.Parts }

// End returns one past the last destination of owner o's range.
func (p Partition) End(o int) int { return p.N * (o + 1) / p.Parts }

// Range returns owner o's destination range [lo, hi).
func (p Partition) Range(o int) (lo, hi int) { return p.Start(o), p.End(o) }

// Owner returns the owner of destination d: the largest o with
// Start(o) <= d. Owners with empty ranges are never returned.
func (p Partition) Owner(d int) int { return ((d+1)*p.Parts - 1) / p.N }

// chunk holds the records one worker addressed to one owner, in scan order.
// keys drive Fill's counting sort; RecordTo-style concat exchanges leave
// them empty and len(vals) is the authoritative length.
type chunk[T any] struct {
	keys []int32
	vals []T
	// off is this chunk's write offset in the destination slice, set by
	// SetBase and consumed by Flush.
	off int
}

// Exchange is a reusable per-(worker, owner) chunk exchange over a value
// type T. The zero value is ready; Reset sizes it for a round.
type Exchange[T any] struct {
	part    Partition
	workers int
	ch      []chunk[T] // ch[w*part.Parts+o], rows beyond workers never read
	base    []int32    // per-owner base offsets, set by Prefix
	counts  [][]int32  // per-owner count scratch over that owner's range
}

// Part returns the exchange's current destination partition.
func (ex *Exchange[T]) Part() Partition { return ex.part }

// Owner returns the owner of destination d under the current partition.
func (ex *Exchange[T]) Owner(d int) int { return ex.part.Owner(d) }

// Reset sizes the exchange for a round of workers record rows over the
// given destination partition. It must be called serially, before the
// record fanout; it does not clear chunk contents — each worker clears its
// own row with ClearWorker inside the fanout, keeping the O(workers·owners)
// clearing off the serial path.
func (ex *Exchange[T]) Reset(workers int, part Partition) {
	ex.workers = workers
	if ex.part == part && len(ex.ch) >= workers*part.Parts {
		return
	}
	need := workers * part.Parts
	if ex.part.Parts != part.Parts || cap(ex.ch) < need {
		// The row stride changed (or the matrix grew): old chunk buffers
		// would land on the wrong (w, o) cells, so start clean.
		ex.ch = make([]chunk[T], need)
	} else {
		ex.ch = ex.ch[:need]
	}
	ex.part = part
	if len(ex.base) < part.Parts {
		ex.base = make([]int32, part.Parts)
	}
	if len(ex.counts) < part.Parts {
		ex.counts = append(ex.counts, make([][]int32, part.Parts-len(ex.counts))...)
	}
}

// ClearWorker empties worker w's chunk row, keeping capacity. Safe to call
// concurrently for distinct w.
func (ex *Exchange[T]) ClearWorker(w int) {
	row := ex.ch[w*ex.part.Parts : (w+1)*ex.part.Parts]
	for o := range row {
		row[o].keys = row[o].keys[:0]
		row[o].vals = row[o].vals[:0]
	}
}

// Record appends one (key, value) record from worker w, addressed to the
// owner of key's destination range. Safe to call concurrently for distinct w.
func (ex *Exchange[T]) Record(w int, key int32, v T) {
	c := &ex.ch[w*ex.part.Parts+ex.part.Owner(int(key))]
	c.keys = append(c.keys, key)
	c.vals = append(c.vals, v)
}

// RecordTo appends a value from worker w directly to owner o's chunk,
// without a key — the concat form used by exchanges whose owners are not
// destination ids (e.g. the live route's per-delay buffers). Chunks written
// with RecordTo must be drained with SetBase/Flush, not Fill.
func (ex *Exchange[T]) RecordTo(w, o int, v T) {
	c := &ex.ch[w*ex.part.Parts+o]
	c.vals = append(c.vals, v)
}

// ChunkLen returns the number of records worker w addressed to owner o.
func (ex *Exchange[T]) ChunkLen(w, o int) int {
	return len(ex.ch[w*ex.part.Parts+o].vals)
}

// Total returns owner o's incoming record total. Valid only between the
// record barrier and the next ClearWorker.
func (ex *Exchange[T]) Total(o int) int {
	t := 0
	for w := 0; w < ex.workers; w++ {
		t += len(ex.ch[w*ex.part.Parts+o].vals)
	}
	return t
}

// Prefix sums each owner's incoming chunk totals and prefixes them into
// per-owner base offsets, returning the grand total. This is the serial
// exchange pass: O(workers·owners), no length-n scan.
func (ex *Exchange[T]) Prefix() int32 {
	var total int32
	for o := 0; o < ex.part.Parts; o++ {
		var t int32
		for w := 0; w < ex.workers; w++ {
			t += int32(len(ex.ch[w*ex.part.Parts+o].vals))
		}
		ex.base[o], total = total, total+t
	}
	return total
}

// Base returns owner o's base offset as computed by the last Prefix.
func (ex *Exchange[T]) Base(o int) int32 { return ex.base[o] }

// Fill counting-sorts owner o's incoming records into out, writing the
// bucket offsets of o's destination range into off: after the owner fanout,
// bucket v holds out[off[v]:off[v+1]] in global scan order (chunks are
// replayed in worker order, and each worker recorded in scan order). off
// must have length >= part.N+1; entries outside o's range are left for
// their owners, and off[N] for the serial epilogue (use the Prefix total).
// Fill returns this owner's end offset — equal to the next owner's base —
// so fused consumers can bound their last bucket without reading an offset
// another owner is writing concurrently. Call only after Prefix, once per
// owner per round, concurrently for distinct owners.
func (ex *Exchange[T]) Fill(o int, off []int32, out []T) int32 {
	lo, hi := ex.part.Range(o)
	counts := ex.counts[o]
	if cap(counts) < hi-lo {
		counts = make([]int32, hi-lo)
		ex.counts[o] = counts
	} else {
		counts = counts[:hi-lo]
		for i := range counts {
			counts[i] = 0
		}
	}
	for w := 0; w < ex.workers; w++ {
		for _, k := range ex.ch[w*ex.part.Parts+o].keys {
			counts[int(k)-lo]++
		}
	}
	acc := ex.base[o]
	for v := lo; v < hi; v++ {
		off[v] = acc
		c := counts[v-lo]
		counts[v-lo] = acc
		acc += c
	}
	for w := 0; w < ex.workers; w++ {
		c := &ex.ch[w*ex.part.Parts+o]
		for i, k := range c.keys {
			out[counts[int(k)-lo]] = c.vals[i]
			counts[int(k)-lo]++
		}
	}
	return acc
}

// SetBase assigns owner o's chunks consecutive write offsets starting at
// base, in worker order, and returns the end offset — the serial placement
// pass of a concat exchange (no counting sort, e.g. the live route). Safe
// to call concurrently for distinct owners.
func (ex *Exchange[T]) SetBase(o, base int) int {
	for w := 0; w < ex.workers; w++ {
		c := &ex.ch[w*ex.part.Parts+o]
		c.off = base
		base += len(c.vals)
	}
	return base
}

// Flush copies chunk (w, o) into dst at the offset SetBase assigned and
// empties it. Safe to call concurrently for distinct w.
func (ex *Exchange[T]) Flush(w, o int, dst []T) {
	c := &ex.ch[w*ex.part.Parts+o]
	if len(c.vals) == 0 {
		return
	}
	copy(dst[c.off:], c.vals)
	c.vals = c.vals[:0]
}

// Swap exchanges the chunk storage (and scratch) of two Exchanges in O(1) —
// the ping-pong operation of pipelined rounds: while one buffer's round is
// being filled and matched, workers record the next round into the other.
func (ex *Exchange[T]) Swap(other *Exchange[T]) {
	*ex, *other = *other, *ex
}
