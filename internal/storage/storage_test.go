package storage

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	s := rng.New(1)
	bad := []Config{
		{N: 1, ObjectsPerNode: 1, Replicas: 1, SlotsPerNode: 1},               // n too small
		{N: 4, ObjectsPerNode: 0, Replicas: 1, SlotsPerNode: 1},               // no objects
		{N: 4, ObjectsPerNode: 1, Replicas: 0, SlotsPerNode: 1},               // no replicas
		{N: 4, ObjectsPerNode: 1, Replicas: 1, SlotsPerNode: 0},               // no slots
		{N: 4, ObjectsPerNode: 1, Replicas: 4, SlotsPerNode: 8},               // replicas > n-1
		{N: 4, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 1},               // capacity infeasible
		{N: 4, ObjectsPerNode: 1, Replicas: 1, SlotsPerNode: 2, RoundCap: -1}, // bad cap
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestSelectorSizeMismatch(t *testing.T) {
	sel, _ := core.NewUniformSelector(5)
	_, err := Run(Config{N: 6, ObjectsPerNode: 1, Replicas: 1, SlotsPerNode: 2, Selector: sel}, rng.New(2))
	if err == nil {
		t.Fatal("accepted selector/config size mismatch")
	}
}

func TestReplicationCompletes(t *testing.T) {
	s := rng.New(3)
	cfg := Config{N: 50, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 8}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("replication incomplete after %d rounds", res.Rounds)
	}
	want := 50 * 2 * 3
	if res.Transfers != want {
		t.Fatalf("transfers %d, want %d", res.Transfers, want)
	}
	last := res.PlacedHistory[len(res.PlacedHistory)-1]
	if last != want {
		t.Fatalf("placed %d, want %d", last, want)
	}
}

func TestPlacedHistoryMonotone(t *testing.T) {
	s := rng.New(4)
	res, err := Run(Config{N: 30, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4}, s)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, c := range res.PlacedHistory {
		if c < prev {
			t.Fatalf("placements dropped at round %d", i+1)
		}
		prev = c
	}
}

func TestOccupancyWithinSlots(t *testing.T) {
	s := rng.New(5)
	cfg := Config{N: 40, ObjectsPerNode: 2, Replicas: 2, SlotsPerNode: 5}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOccupancy > cfg.SlotsPerNode {
		t.Fatalf("a node hosts %d > %d slots", res.MaxOccupancy, cfg.SlotsPerNode)
	}
	if res.MinOccupancy < 0 {
		t.Fatalf("negative occupancy %d", res.MinOccupancy)
	}
}

func TestLoadBalance(t *testing.T) {
	// With ample slack, the randomized placement should spread replicas:
	// no node may end up with more than ~4x the average occupancy.
	s := rng.New(6)
	cfg := Config{N: 100, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 12}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	avg := float64(cfg.ObjectsPerNode * cfg.Replicas) // 6 per node on average
	if float64(res.MaxOccupancy) > 4*avg {
		t.Fatalf("max occupancy %d vs average %.0f: badly unbalanced", res.MaxOccupancy, avg)
	}
}

func TestTightCapacityStillCompletes(t *testing.T) {
	// Exactly enough slots network-wide: completion requires near-perfect
	// packing, which takes longer but must still terminate.
	s := rng.New(7)
	cfg := Config{N: 12, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 2, MaxRounds: 20000}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("tight config incomplete after %d rounds (placed %v)", res.Rounds, res.PlacedHistory[len(res.PlacedHistory)-1])
	}
	if res.MaxOccupancy != 2 || res.MinOccupancy != 2 {
		t.Fatalf("tight config must fill every slot: %d..%d", res.MinOccupancy, res.MaxOccupancy)
	}
}

func TestRoundCapLimitsPerRoundProgress(t *testing.T) {
	s := rng.New(8)
	cfg := Config{N: 20, ObjectsPerNode: 4, Replicas: 2, SlotsPerNode: 10, RoundCap: 1}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, c := range res.PlacedHistory {
		// With cap 1, at most one block lands per node per round.
		if c-prev > 20 {
			t.Fatalf("placed %d blocks in one round with cap 1 on 20 nodes", c-prev)
		}
		prev = c
	}
}

func TestHigherCapFaster(t *testing.T) {
	s1, s2 := rng.New(9), rng.New(10)
	slow, err := Run(Config{N: 40, ObjectsPerNode: 4, Replicas: 3, SlotsPerNode: 16, RoundCap: 1}, s1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(Config{N: 40, ObjectsPerNode: 4, Replicas: 3, SlotsPerNode: 16, RoundCap: 4}, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Completed || !fast.Completed {
		t.Fatal("runs incomplete")
	}
	if fast.Rounds >= slow.Rounds {
		t.Fatalf("cap 4 (%d rounds) not faster than cap 1 (%d rounds)", fast.Rounds, slow.Rounds)
	}
}

func TestMaxRoundsCap(t *testing.T) {
	s := rng.New(11)
	res, err := Run(Config{N: 60, ObjectsPerNode: 8, Replicas: 3, SlotsPerNode: 30, MaxRounds: 2}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds > 2 {
		t.Fatalf("round cap violated: %+v", res.Rounds)
	}
}

func TestWeightedSelectorWorks(t *testing.T) {
	// Replication must also work over a skewed (DHT-like) distribution.
	weights := make([]float64, 30)
	for i := range weights {
		weights[i] = 1 + float64(i%5)
	}
	sel, err := core.NewWeightedSelector(weights)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: 30, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4, Selector: sel}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("skewed-selector replication incomplete after %d rounds", res.Rounds)
	}
}

func TestWorkersBitIdenticalRuns(t *testing.T) {
	// The worker budget is purely a speed knob: for a fixed seed the whole
	// run — rounds, history, transfers, occupancy — must be bit-identical
	// at every budget size.
	cfg := Config{N: 60, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 10, RoundCap: 2}
	base, err := Run(cfg, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Completed {
		t.Fatal("baseline run incomplete")
	}
	for _, workers := range []int{1, 2, 8} {
		b, err := par.NewBudget(workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunShared(cfg, rng.New(77), b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: run diverged from serial baseline:\n got %+v\nwant %+v", workers, got, base)
		}
	}
}
