// Package storage implements the second Section 5 extension of the paper:
// a distributed replicated storage system organized by the dating service.
//
// Every node owns local objects that must each be replicated on R distinct
// remote nodes, and offers a fixed number of hosting slots for other nodes'
// replicas. Each round, a node's outstanding replication needs become its
// supply of blocks to send, and its free slots become its demand; the
// dating service pairs them with no central coordination, and each arranged
// date ships one replica. Because the service never exceeds declared
// capacities, a node is never asked to absorb more blocks per round than it
// advertised.
package storage

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/run"
)

// Config parameterizes a replication run.
type Config struct {
	N              int // nodes
	ObjectsPerNode int // local objects each node must replicate
	Replicas       int // required replicas per object, on distinct remote nodes
	SlotsPerNode   int // hosting capacity per node (in blocks)
	// RoundCap bounds how many blocks a node may send or receive per round
	// (its network bandwidth); 0 means 1, the paper's unit-message model.
	RoundCap int
	// Selector defaults to uniform; any common distribution works.
	Selector  core.Selector
	MaxRounds int
}

// Result reports a replication run.
type Result struct {
	Rounds        int
	Completed     bool
	PlacedHistory []int // cumulative placed replicas per round
	SentHistory   []int // dates arranged per round (useful or wasted)
	Transfers     int   // dates used to ship a block
	WastedDates   int   // dates where the pair had nothing placeable
	MaxOccupancy  int   // fullest node at the end
	MinOccupancy  int   // emptiest node at the end
}

// validate checks feasibility: enough distinct hosts and enough total slots.
func (c *Config) validate() error {
	if c.N <= 1 {
		return fmt.Errorf("storage: need n > 1, got %d", c.N)
	}
	if c.ObjectsPerNode < 1 || c.Replicas < 1 || c.SlotsPerNode < 1 {
		return fmt.Errorf("storage: objects, replicas and slots must be positive")
	}
	if c.Replicas > c.N-1 {
		return fmt.Errorf("storage: %d replicas need %d distinct remote hosts, only %d exist", c.Replicas, c.Replicas, c.N-1)
	}
	need := c.N * c.ObjectsPerNode * c.Replicas
	have := c.N * c.SlotsPerNode
	if need > have {
		return fmt.Errorf("storage: %d replica slots needed but only %d offered", need, have)
	}
	if c.RoundCap < 0 {
		return fmt.Errorf("storage: negative round cap")
	}
	return nil
}

// Protocol implements run.Spec.
func (c Config) Protocol() string { return "storage" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainStorage and every round's Arrange draws its workers from the
// shared budget. Trajectory is the cumulative placed-replica history;
// Detail the full Result.
func (c Config) Execute(o *run.Options) (run.Report, error) {
	res, err := runBudgeted(c, run.StreamFor(o.Seed, run.DomainStorage), o.Budget)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.PlacedHistory,
		Sent:       res.SentHistory,
		Messages:   int64(res.Transfers + res.WastedDates),
		Detail:     res,
	}, nil
}

// Run executes the replication protocol until every object has R replicas
// or MaxRounds elapses.
func Run(cfg Config, s *rng.Stream) (Result, error) {
	return runBudgeted(cfg, s, nil)
}

// RunShared is Run with a shared worker budget: every round's Arrange runs
// with the caller's worker plus whatever spare tokens b has at that moment.
// The Arranger is worker-count independent, so budget sharing never changes
// the result — the experiment harness uses this to let storage repetitions
// soak up cores its other jobs are done with.
func RunShared(cfg Config, s *rng.Stream, b *par.Budget) (Result, error) {
	return runBudgeted(cfg, s, b)
}

func runBudgeted(cfg Config, s *rng.Stream, b *par.Budget) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(cfg.N)
		if err != nil {
			return Result{}, err
		}
		sel = u
	}
	if sel.N() != cfg.N {
		return Result{}, fmt.Errorf("storage: selector addresses %d nodes, config has %d", sel.N(), cfg.N)
	}
	cap := cfg.RoundCap
	if cap == 0 {
		cap = 1
	}
	arr, err := core.NewArranger(sel)
	if err != nil {
		return Result{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 40 * (cfg.ObjectsPerNode*cfg.Replicas + 16)
	}

	n := cfg.N
	objs := cfg.ObjectsPerNode
	// Object o of node i has id i*objs+o. hosts[id] lists its replica
	// holders; onHost marks (id, host) pairs for O(1) duplicate checks.
	total := n * objs
	hosts := make([][]int, total)
	onHost := make(map[int64]bool, total*cfg.Replicas)
	occupancy := make([]int, n)
	outstanding := make([]int, n) // replicas still needed, per owner
	for i := range outstanding {
		outstanding[i] = objs * cfg.Replicas
	}

	needTotal := total * cfg.Replicas
	placed := 0

	var res Result
	out := make([]int, n)
	in := make([]int, n)
	for round := 1; round <= maxRounds; round++ {
		for i := 0; i < n; i++ {
			out[i] = min(outstanding[i], cap)
			in[i] = min(cfg.SlotsPerNode-occupancy[i], cap)
		}
		// One draw from s seeds the whole round, so the run consumes the
		// same stream positions at every worker count.
		var dates []core.Date
		var err error
		if b != nil {
			dates, err = arr.ArrangeShared(out, in, s.Uint64(), b)
		} else {
			dates, err = arr.Arrange(out, in, s.Uint64(), 1)
		}
		if err != nil {
			return Result{}, err
		}
		res.SentHistory = append(res.SentHistory, len(dates))
		for _, d := range dates {
			owner, host := d.Sender, d.Receiver
			if owner == host || occupancy[host] >= cfg.SlotsPerNode || outstanding[owner] == 0 {
				res.WastedDates++
				continue
			}
			// Place the first outstanding object of owner not yet on host.
			placedOne := false
			for o := 0; o < objs; o++ {
				id := owner*objs + o
				if len(hosts[id]) >= cfg.Replicas {
					continue
				}
				key := int64(id)*int64(n) + int64(host)
				if onHost[key] {
					continue
				}
				onHost[key] = true
				hosts[id] = append(hosts[id], host)
				occupancy[host]++
				outstanding[owner]--
				placed++
				res.Transfers++
				placedOne = true
				break
			}
			if !placedOne {
				res.WastedDates++
			}
		}
		res.Rounds = round
		res.PlacedHistory = append(res.PlacedHistory, placed)
		if placed == needTotal {
			res.Completed = true
			break
		}
	}

	res.MaxOccupancy, res.MinOccupancy = occupancy[0], occupancy[0]
	for _, c := range occupancy {
		if c > res.MaxOccupancy {
			res.MaxOccupancy = c
		}
		if c < res.MinOccupancy {
			res.MinOccupancy = c
		}
	}
	// Internal consistency: every hosts list within bounds and distinct.
	for id, hs := range hosts {
		if len(hs) > cfg.Replicas {
			return Result{}, fmt.Errorf("storage: object %d over-replicated (%d)", id, len(hs))
		}
		seen := map[int]bool{}
		for _, h := range hs {
			if seen[h] || h == id/objs {
				return Result{}, fmt.Errorf("storage: object %d has invalid host set %v", id, hs)
			}
			seen[h] = true
		}
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
