package repro_test

import (
	"fmt"

	"repro"
)

// One round of the dating service on a homogeneous network: about 47% of
// the centralized optimum is arranged under uniform selection.
func ExampleNewDatingService() {
	profile := repro.UnitBandwidth(1000)
	sel, _ := repro.Uniform(1000)
	svc, _ := repro.NewDatingService(profile, sel)

	s := repro.NewStream(42)
	res := svc.RunRound(s)

	frac := res.Fraction(svc.M())
	fmt.Println(frac > 0.40 && frac < 0.55)
	// Output: true
}

// The unified runner: one entrypoint for every protocol, a seed instead of
// a stream, and a worker budget that can never change a number — the same
// spec and seed yield the identical report at any WithWorkers value.
func ExampleRun() {
	spec := repro.RumorConfig{N: 1024, Algorithm: repro.Dating}

	serial, _ := repro.Run(spec, repro.WithSeed(7))
	parallel, _ := repro.Run(spec, repro.WithSeed(7), repro.WithWorkers(8))

	fmt.Println(serial.Completed)
	fmt.Println(serial.Rounds == parallel.Rounds && serial.Messages == parallel.Messages)
	// Output:
	// true
	// true
}

// Pipelining batches dating rounds through the double-buffered engine —
// round r+1's scatter overlaps round r's matching — without moving a single
// number: the report is bit-identical to the sequential schedule.
func ExampleWithPipeline() {
	spec := repro.RumorConfig{N: 1024, Algorithm: repro.Dating}

	sequential, _ := repro.Run(spec, repro.WithSeed(7))
	pipelined, _ := repro.Run(spec, repro.WithSeed(7), repro.WithPipeline(4), repro.WithWorkers(4))

	fmt.Println(sequential.Completed)
	fmt.Println(sequential.Rounds == pipelined.Rounds && sequential.Messages == pipelined.Messages)
	// Output:
	// true
	// true
}

// The seeded engine shards a round across worker goroutines, and the worker
// count never changes the arranged dates — it is a pure speed knob.
func ExampleDatingService_RunRoundSeeded() {
	profile := repro.UnitBandwidth(10000)
	sel, _ := repro.Uniform(10000)
	svc, _ := repro.NewDatingService(profile, sel)

	a, _ := svc.RunRoundSeeded(42, 1)
	b, _ := svc.RunRoundSeeded(42, 4)

	frac := a.Fraction(svc.M())
	fmt.Println(len(a.Dates) == len(b.Dates) && a.Dates[0] == b.Dates[0])
	fmt.Println(frac > 0.40 && frac < 0.55)
	// Output:
	// true
	// true
}

// The DHT induces a non-uniform selection distribution (arc lengths), and
// the dating service arranges even MORE dates with it than with uniform
// selection — the paper's Figure 1 result.
func ExampleRingSelection() {
	s := repro.NewStream(3)
	ring, _ := repro.NewRing(1000, s)
	sel, _ := repro.RingSelection(ring)
	svc, _ := repro.NewDatingService(repro.UnitBandwidth(1000), sel)

	total := 0
	for i := 0; i < 20; i++ {
		total += len(svc.RunRound(s).Dates)
	}
	avg := float64(total) / 20 / 1000
	fmt.Println(avg > 0.50) // uniform gives ~0.47; DHT beats it
	// Output: true
}

// Broadcasting a multi-block message with network coding over the dating
// service: every node decodes the full message, verified bit-exactly.
func ExampleRun_monger() {
	rep, _ := repro.Run(repro.MongerConfig{
		N:         50,
		Blocks:    8,
		BlockSize: 32,
	}, repro.WithSeed(5))

	fmt.Println(rep.Completed)
	fmt.Println(rep.Rounds >= 8) // at least one round per block at unit bandwidth
	// Output:
	// true
	// true
}

// ArrangeDates is the raw supply/demand matching interface: here node 0
// offers two units and nodes 2 and 3 each demand one.
func ExampleArrangeDates() {
	sel, _ := repro.Uniform(4)
	s := repro.NewStream(9)

	supply := []int{2, 0, 0, 0}
	demand := []int{0, 0, 1, 1}
	dates, _ := repro.ArrangeDates(supply, demand, sel, s)

	valid := true
	for _, d := range dates {
		if d.Sender != 0 || (d.Receiver != 2 && d.Receiver != 3) {
			valid = false
		}
	}
	fmt.Println(valid)
	// Output: true
}

// An Arranger reuses scratch across rounds, and its worker count never
// changes the arranged dates: randomness is derived per node and per
// rendezvous from the round seed, not per worker.
func ExampleNewArranger() {
	sel, _ := repro.Uniform(1000)
	arr, _ := repro.NewArranger(sel)

	supply := make([]int, 1000)
	demand := make([]int, 1000)
	for i := range supply {
		supply[i] = 1
		demand[i] = 1
	}

	serial, _ := arr.Arrange(supply, demand, 42, 1)
	parallel, _ := arr.Arrange(supply, demand, 42, 8)

	same := len(serial) == len(parallel)
	for i := range serial {
		same = same && serial[i] == parallel[i]
	}
	fmt.Println(same)
	fmt.Println(float64(len(serial))/1000 > 0.40)
	// Output:
	// true
	// true
}
